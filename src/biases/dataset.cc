#include "src/biases/dataset.h"

#include <cassert>
#include <mutex>

#include "src/common/thread_pool.h"
#include "src/rc4/keygen.h"
#include "src/rc4/rc4.h"

namespace rc4b {

namespace {

// Flush interval for 16-bit worker tiles. The largest single-byte probability
// in the RC4 keystream is ~2 * 2^-8 (Z2 = 0), so per-cell counts stay below
// ~2^13 per flush — a wide margin under the 2^16 - 1 cap.
constexpr uint64_t kKeysPerFlush = 1 << 20;

}  // namespace

SingleByteGrid GenerateSingleByteDataset(size_t positions, const DatasetOptions& options) {
  SingleByteGrid grid(positions);
  std::mutex merge_mutex;
  ParallelChunks(options.keys, options.workers, [&](unsigned w, uint64_t begin, uint64_t end) {
    Rc4KeyGenerator keygen(options.seed + w);
    SingleByteGrid local(positions);
    WorkerTile tile(positions * 256);
    std::vector<uint8_t> keystream(positions);
    uint64_t since_flush = 0;
    for (uint64_t k = begin; k < end; ++k) {
      Rc4 rc4(keygen.NextKey());
      rc4.Keystream(keystream);
      for (size_t pos = 0; pos < positions; ++pos) {
        tile.Add(pos * 256 + keystream[pos]);
      }
      if (++since_flush == kKeysPerFlush) {
        tile.FlushInto(local.MutableCells());
        since_flush = 0;
      }
    }
    tile.FlushInto(local.MutableCells());
    local.AddKeys(end - begin);
    std::lock_guard<std::mutex> lock(merge_mutex);
    grid.Merge(local);
  });
  return grid;
}

namespace {

// Flush cadence for digraph worker tiles: the largest pair-cell probability
// in any of our datasets is ~3 * 2^-16 (Isobe's Z1 = Z2 = 0), so per-cell
// counts stay around 3 * 2^4 per flush — far below the 16-bit cap. Keeping
// worker state in 16-bit tiles (38 MB for 289 positions) instead of 64-bit
// grids (150 MB) is what lets ~24 workers coexist, mirroring the paper's
// counter-size optimization.
constexpr uint64_t kDigraphKeysPerFlush = 1 << 20;

}  // namespace

DigraphGrid GenerateConsecutiveDataset(size_t positions, const DatasetOptions& options) {
  DigraphGrid grid(positions);
  std::mutex merge_mutex;
  ParallelChunks(options.keys, options.workers, [&](unsigned w, uint64_t begin, uint64_t end) {
    Rc4KeyGenerator keygen(options.seed + w);
    WorkerTile tile(positions * 65536);
    std::vector<uint8_t> keystream(positions + 1);
    uint64_t since_flush = 0;
    const auto flush = [&] {
      std::lock_guard<std::mutex> lock(merge_mutex);
      tile.FlushInto(grid.MutableCells());
    };
    for (uint64_t k = begin; k < end; ++k) {
      Rc4 rc4(keygen.NextKey());
      rc4.Keystream(keystream);
      for (size_t pos = 0; pos < positions; ++pos) {
        tile.Add(pos * 65536 + static_cast<size_t>(keystream[pos]) * 256 +
                 keystream[pos + 1]);
      }
      if (++since_flush == kDigraphKeysPerFlush) {
        flush();
        since_flush = 0;
      }
    }
    flush();
    std::lock_guard<std::mutex> lock(merge_mutex);
    grid.AddKeys(end - begin);
  });
  return grid;
}

DigraphGrid GeneratePairDataset(const std::vector<std::pair<uint32_t, uint32_t>>& pairs,
                                const DatasetOptions& options) {
  size_t max_position = 0;
  for (const auto& [a, b] : pairs) {
    assert(a >= 1 && a < b);
    max_position = std::max<size_t>(max_position, b);
  }
  DigraphGrid grid(pairs.size());
  std::mutex merge_mutex;
  ParallelChunks(options.keys, options.workers, [&](unsigned w, uint64_t begin, uint64_t end) {
    Rc4KeyGenerator keygen(options.seed + w);
    WorkerTile tile(pairs.size() * 65536);
    std::vector<uint8_t> keystream(max_position);
    uint64_t since_flush = 0;
    const auto flush = [&] {
      std::lock_guard<std::mutex> lock(merge_mutex);
      tile.FlushInto(grid.MutableCells());
    };
    for (uint64_t k = begin; k < end; ++k) {
      Rc4 rc4(keygen.NextKey());
      rc4.Keystream(keystream);
      for (size_t p = 0; p < pairs.size(); ++p) {
        tile.Add(p * 65536 + static_cast<size_t>(keystream[pairs[p].first - 1]) * 256 +
                 keystream[pairs[p].second - 1]);
      }
      if (++since_flush == kDigraphKeysPerFlush) {
        flush();
        since_flush = 0;
      }
    }
    flush();
    std::lock_guard<std::mutex> lock(merge_mutex);
    grid.AddKeys(end - begin);
  });
  return grid;
}

DigraphGrid GenerateLongTermDigraphDataset(const LongTermOptions& options) {
  assert(options.drop % 256 == 0);
  DigraphGrid grid(256);
  std::mutex merge_mutex;
  ParallelChunks(options.keys, options.workers, [&](unsigned w, uint64_t begin, uint64_t end) {
    Rc4KeyGenerator keygen(options.seed + w);
    keygen.Seek(begin);
    // 32-bit worker-local grid (67 MB instead of 134 MB): per-row cell counts
    // stay below 2^32 for any single worker's share of the samples.
    std::vector<uint32_t> local(256 * 65536, 0);
    // Stream in 256-byte blocks plus one lookahead byte so each digraph's
    // counter class is block-position invariant.
    std::vector<uint8_t> block(257);
    for (uint64_t k = begin; k < end; ++k) {
      Rc4 rc4(keygen.NextKey());
      rc4.Skip(options.drop);
      uint64_t remaining = options.bytes_per_key;
      rc4.Keystream(std::span<uint8_t>(block.data(), 1));  // prime the lookahead
      while (remaining >= 256) {
        // block[0] is the byte at a position == 1 (mod 256) boundary's
        // predecessor; generate the next 256 bytes.
        rc4.Keystream(std::span<uint8_t>(block.data() + 1, 256));
        for (size_t off = 0; off < 256; ++off) {
          local[off * 65536 + static_cast<size_t>(block[off]) * 256 +
                block[off + 1]] += 1;
        }
        block[0] = block[256];
        remaining -= 256;
      }
    }
    std::lock_guard<std::mutex> lock(merge_mutex);
    grid.MergeCounts32(local, (end - begin) * (options.bytes_per_key / 256));
  });
  return grid;
}

AbsabCounts GenerateAbsabDataset(uint64_t max_gap, const LongTermOptions& options) {
  AbsabCounts totals;
  totals.matches.assign(max_gap + 1, 0);
  totals.samples.assign(max_gap + 1, 0);
  std::mutex merge_mutex;
  ParallelChunks(options.keys, options.workers, [&](unsigned w, uint64_t begin, uint64_t end) {
    Rc4KeyGenerator keygen(options.seed + w);
    keygen.Seek(begin);
    AbsabCounts local;
    local.matches.assign(max_gap + 1, 0);
    local.samples.assign(max_gap + 1, 0);
    const size_t window = static_cast<size_t>(max_gap) + 4;
    const size_t chunk = 1 << 16;
    std::vector<uint8_t> buffer(chunk + window);
    for (uint64_t k = begin; k < end; ++k) {
      Rc4 rc4(keygen.NextKey());
      rc4.Skip(options.drop);
      uint64_t remaining = options.bytes_per_key;
      rc4.Keystream(std::span<uint8_t>(buffer.data(), window));
      while (remaining >= chunk) {
        rc4.Keystream(std::span<uint8_t>(buffer.data() + window, chunk));
        for (size_t r = 0; r < chunk; ++r) {
          const uint8_t a = buffer[r];
          const uint8_t b = buffer[r + 1];
          for (uint64_t g = 0; g <= max_gap; ++g) {
            local.matches[g] += (a == buffer[r + g + 2] && b == buffer[r + g + 3]) ? 1 : 0;
          }
        }
        std::memcpy(buffer.data(), buffer.data() + chunk, window);
        remaining -= chunk;
        for (uint64_t g = 0; g <= max_gap; ++g) {
          local.samples[g] += chunk;
        }
      }
    }
    std::lock_guard<std::mutex> lock(merge_mutex);
    for (uint64_t g = 0; g <= max_gap; ++g) {
      totals.matches[g] += local.matches[g];
      totals.samples[g] += local.samples[g];
    }
  });
  return totals;
}

std::vector<uint64_t> GenerateAlignedPairDataset(uint32_t offset_a, uint32_t offset_b,
                                                 const LongTermOptions& options) {
  assert(offset_a < offset_b && offset_b < 256);
  assert(options.drop % 256 == 0 && options.drop > 0);
  std::vector<uint64_t> counts(65536, 0);
  std::mutex merge_mutex;
  ParallelChunks(options.keys, options.workers, [&](unsigned w, uint64_t begin, uint64_t end) {
    Rc4KeyGenerator keygen(options.seed + w);
    keygen.Seek(begin);
    std::vector<uint64_t> local(65536, 0);
    std::vector<uint8_t> block(256);
    for (uint64_t k = begin; k < end; ++k) {
      Rc4 rc4(keygen.NextKey());
      rc4.Skip(options.drop);
      // After dropping a multiple of 256 bytes, the next generated byte is
      // Z_{drop+1}, i.e. offset 0 within a 256-aligned block is position
      // 256w + 1 in 1-based numbering. The paper's Z_{256w} is the *last*
      // byte of the previous block: offsets here are relative to Z_{256w},
      // so shift by -1 and read offset 255 of the previous block. To keep it
      // simple we realign: skip 255 more bytes so block[0] == Z_{256(w+1)}.
      rc4.Skip(255);
      for (uint64_t blocks = options.bytes_per_key / 256; blocks > 0; --blocks) {
        rc4.Keystream(block);
        local[static_cast<size_t>(block[offset_a]) * 256 + block[offset_b]] += 1;
      }
    }
    std::lock_guard<std::mutex> lock(merge_mutex);
    for (size_t i = 0; i < counts.size(); ++i) {
      counts[i] += local[i];
    }
  });
  return counts;
}

}  // namespace rc4b
