// Pluggable likelihood sources for the unified plaintext-recovery pipeline
// (docs/recovery.md).
//
// The paper's attacks differ only in where their per-position likelihood
// tables come from: the TKIP trailer decryption multiplies per-TSC1
// single-byte models over captured frame statistics (Sect. 5.1), the HTTPS
// cookie attack combines Fluhrer-McGrew double-byte likelihoods with
// multi-gap ABSAB differential estimates (Sect. 4.2/4.3), and single-byte
// broadcast recovery scores each position against a measured keystream
// distribution (Sect. 3.3/6.1). These interfaces make the table origin a
// plug-in so the RecoveryEngine (src/recovery/engine.h) and the scenario
// registry (src/recovery/scenario.h) can drive any of them through one loop.
#ifndef SRC_RECOVERY_LIKELIHOOD_SOURCE_H_
#define SRC_RECOVERY_LIKELIHOOD_SOURCE_H_

#include <cstdint>
#include <vector>

#include "src/core/candidates.h"
#include "src/tkip/injection.h"
#include "src/tkip/tsc_model.h"
#include "src/tls/cookie_attack.h"

namespace rc4b::recovery {

// Produces per-position single-byte lambda tables (length() rows of 256
// log-likelihoods) from accumulated ciphertext statistics. Tables() is
// non-const because sampled sources draw from an attached generator.
class SingleByteLikelihoodSource {
 public:
  virtual ~SingleByteLikelihoodSource() = default;

  // Number of unknown plaintext positions covered.
  virtual size_t length() const = 0;

  // Builds the lambda tables for the current statistics.
  virtual SingleByteTables Tables() = 0;
};

// Produces the inner_length() + 1 double-byte transition tables over the
// adjacent pairs of m1 || P || mL consumed by Algorithm 2.
class DoubleByteLikelihoodSource {
 public:
  virtual ~DoubleByteLikelihoodSource() = default;

  // Number of unknown plaintext bytes between the known boundary bytes.
  virtual size_t inner_length() const = 0;

  // Builds the combined transition tables for the current statistics.
  virtual DoubleByteTables Tables() = 0;
};

// Adapter over the per-TSC1 single-byte model: wraps captured TKIP frame
// statistics plus the attacker's TkipTscModel and multiplies the per-TSC
// likelihoods (TkipTrailerLikelihoods, Sect. 5.1). The referenced stats and
// model must outlive the source; Tables() may be called again after more
// frames were added (the per-checkpoint loop of the TKIP simulations).
class TkipTscLikelihoodSource : public SingleByteLikelihoodSource {
 public:
  TkipTscLikelihoodSource(const TkipCaptureStats& stats,
                          const TkipTscModel& model)
      : stats_(&stats), model_(&model) {}

  size_t length() const override { return stats_->position_count(); }
  SingleByteTables Tables() override;

 private:
  const TkipCaptureStats* stats_;
  const TkipTscModel* model_;
};

// Adapter over plain per-position keystream models: position r scores its
// ciphertext byte counts against log_model[r] (formula 11/12). This is the
// single-byte broadcast-recovery source, and the only one usable beyond
// keystream position 256 where no TSC structure exists.
class SingleByteModelSource : public SingleByteLikelihoodSource {
 public:
  // counts[r] are 256 ciphertext byte counts at position r; log_model[r] are
  // the 256 log keystream probabilities at that position. Sizes must match.
  SingleByteModelSource(std::vector<std::vector<uint64_t>> counts,
                        std::vector<std::vector<double>> log_model);

  size_t length() const override { return counts_.size(); }
  SingleByteTables Tables() override;

 private:
  std::vector<std::vector<uint64_t>> counts_;
  std::vector<std::vector<double>> log_model_;
};

// Adapter over the FM + multi-gap ABSAB combiner for honestly captured
// request ciphertexts: wraps CookieCaptureStats and builds the combined
// transition tables at the capture's keystream alignment
// (CookieTransitionTables, formulas 15 + 25). The stats must outlive the
// source.
class CapturedCookieLikelihoodSource : public DoubleByteLikelihoodSource {
 public:
  // `keystream_alignment` is the 0-based keystream offset of the first
  // cookie byte modulo 256 (see CookieTransitionTables).
  CapturedCookieLikelihoodSource(const CookieCaptureStats& stats,
                                 size_t keystream_alignment)
      : stats_(&stats), keystream_alignment_(keystream_alignment) {}

  size_t inner_length() const override {
    return stats_->layout().cookie_length;
  }
  DoubleByteTables Tables() override;

 private:
  const CookieCaptureStats* stats_;
  size_t keystream_alignment_;
};

}  // namespace rc4b::recovery

#endif  // SRC_RECOVERY_LIKELIHOOD_SOURCE_H_
