#include "src/sim/runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace rc4b::sim {
namespace {

TEST(TrialSeedTest, DeterministicAndDistinct) {
  EXPECT_EQ(TrialSeed(1, 0), TrialSeed(1, 0));
  EXPECT_NE(TrialSeed(1, 0), TrialSeed(1, 1));
  EXPECT_NE(TrialSeed(1, 0), TrialSeed(2, 0));
  // Nearby (seed, trial) pairs must not collide via seed + trial symmetry.
  EXPECT_NE(TrialSeed(1, 2), TrialSeed(2, 1));
}

TEST(TrialRngTest, ReproducesTheSameStream) {
  Xoshiro256 a = TrialRng(7, 3);
  Xoshiro256 b = TrialRng(7, 3);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(a(), b());
  }
  Xoshiro256 c = TrialRng(7, 4);
  EXPECT_NE(TrialRng(7, 3)(), c());
}

TEST(ForEachTrialTest, CoversEveryTrialExactlyOnce) {
  const TrialRunnerOptions options{100, 4, 9};
  std::vector<std::atomic<int>> visits(100);
  ForEachTrial(options, [&](uint64_t trial, Xoshiro256&) {
    visits[trial].fetch_add(1);
  });
  for (const auto& count : visits) {
    EXPECT_EQ(count.load(), 1);
  }
}

// A trial function with enough internal state to expose any seeding or
// collection-order difference between worker counts.
uint64_t MixTrial(uint64_t trial, Xoshiro256& rng) {
  uint64_t acc = trial;
  for (int i = 0; i < 8; ++i) {
    acc = acc * 0x100000001b3ULL ^ rng();
  }
  return acc;
}

TEST(RunTrialsTest, BitExactForAnyWorkerCount) {
  // Serial reference: the contract says trial t depends on (seed, t) alone.
  const uint64_t seed = 42;
  const uint64_t trials = 37;  // not a multiple of any tested worker count
  std::vector<uint64_t> reference(trials);
  for (uint64_t t = 0; t < trials; ++t) {
    Xoshiro256 rng = TrialRng(seed, t);
    reference[t] = MixTrial(t, rng);
  }

  for (unsigned workers : {1u, 2u, 4u, 8u}) {
    const auto results = RunTrials<uint64_t>(
        TrialRunnerOptions{trials, workers, seed}, MixTrial);
    EXPECT_EQ(results, reference) << "workers=" << workers;
  }
}

}  // namespace
}  // namespace rc4b::sim
