#include "src/common/flags.h"

#include <gtest/gtest.h>

namespace rc4b {
namespace {

TEST(FlagsTest, DefaultsUsedWhenNotPassed) {
  FlagSet flags("test");
  flags.Define("keys", "1024", "number of keys");
  char prog[] = "prog";
  char* argv[] = {prog};
  ASSERT_TRUE(flags.Parse(1, argv));
  EXPECT_EQ(flags.GetInt("keys"), 1024);
}

TEST(FlagsTest, EqualsForm) {
  FlagSet flags("test");
  flags.Define("keys", "0", "");
  char prog[] = "prog";
  char arg[] = "--keys=4096";
  char* argv[] = {prog, arg};
  ASSERT_TRUE(flags.Parse(2, argv));
  EXPECT_EQ(flags.GetUint("keys"), 4096u);
}

TEST(FlagsTest, SpaceForm) {
  FlagSet flags("test");
  flags.Define("name", "", "");
  char prog[] = "prog";
  char a1[] = "--name";
  char a2[] = "hello";
  char* argv[] = {prog, a1, a2};
  ASSERT_TRUE(flags.Parse(3, argv));
  EXPECT_EQ(flags.GetString("name"), "hello");
}

TEST(FlagsTest, HexIntegerParsed) {
  FlagSet flags("test");
  flags.Define("mask", "0xff", "");
  char prog[] = "prog";
  char* argv[] = {prog};
  ASSERT_TRUE(flags.Parse(1, argv));
  EXPECT_EQ(flags.GetInt("mask"), 255);
}

TEST(FlagsTest, DoubleAndBool) {
  FlagSet flags("test");
  flags.Define("rate", "0.5", "").Define("verbose", "false", "");
  char prog[] = "prog";
  char a1[] = "--rate=0.25";
  char a2[] = "--verbose=true";
  char* argv[] = {prog, a1, a2};
  ASSERT_TRUE(flags.Parse(3, argv));
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate"), 0.25);
  EXPECT_TRUE(flags.GetBool("verbose"));
}

TEST(FlagsTest, HelpReturnsFalse) {
  FlagSet flags("test");
  char prog[] = "prog";
  char a1[] = "--help";
  char* argv[] = {prog, a1};
  EXPECT_FALSE(flags.Parse(2, argv));
}

}  // namespace
}  // namespace rc4b
