#include "src/tkip/key_mixing.h"

#include <cassert>

#include "src/crypto/aes128.h"

namespace rc4b {

namespace {

// The TKIP S-box maps a 16-bit value through two byte-indexed 16-bit tables.
// Both tables derive from the AES S-box: the low-byte table packs
// (xtime(S[i]) << 8) | (S[i] ^ xtime(S[i])) and the high-byte table is its
// byte-swap. Deriving them programmatically avoids a 512-entry literal and
// keeps a single S-box source of truth (tested against the AES vectors).
struct SboxTables {
  std::array<uint16_t, 256> lo;
  std::array<uint16_t, 256> hi;
};

const SboxTables& Tables() {
  static const SboxTables kTables = [] {
    SboxTables t;
    const auto& sbox = Aes128::SBox();
    for (int i = 0; i < 256; ++i) {
      const uint8_t s = sbox[i];
      const uint8_t x2 = static_cast<uint8_t>(
          static_cast<uint8_t>(s << 1) ^ ((s & 0x80) ? 0x1b : 0x00));
      const uint8_t x3 = static_cast<uint8_t>(s ^ x2);
      const uint16_t entry = static_cast<uint16_t>(x2 << 8 | x3);
      t.lo[i] = entry;
      t.hi[i] = static_cast<uint16_t>(entry << 8 | entry >> 8);
    }
    return t;
  }();
  return kTables;
}

uint16_t S(uint16_t v) {
  const auto& t = Tables();
  return static_cast<uint16_t>(t.lo[v & 0xff] ^ t.hi[v >> 8]);
}

uint16_t Mk16(uint8_t hi, uint8_t lo) {
  return static_cast<uint16_t>(static_cast<uint16_t>(hi) << 8 | lo);
}

uint16_t RotR1(uint16_t v) {
  return static_cast<uint16_t>((v >> 1) | (v << 15));
}

uint8_t Lo8(uint16_t v) { return static_cast<uint8_t>(v); }
uint8_t Hi8(uint16_t v) { return static_cast<uint8_t>(v >> 8); }

}  // namespace

TkipPhase1Key TkipPhase1(std::span<const uint8_t> tk, std::span<const uint8_t> ta,
                         uint32_t iv32) {
  assert(tk.size() == 16 && ta.size() == 6);
  TkipPhase1Key p;
  p[0] = static_cast<uint16_t>(iv32);
  p[1] = static_cast<uint16_t>(iv32 >> 16);
  p[2] = Mk16(ta[1], ta[0]);
  p[3] = Mk16(ta[3], ta[2]);
  p[4] = Mk16(ta[5], ta[4]);
  for (uint16_t i = 0; i < 8; ++i) {
    const size_t j = 2 * (i & 1);
    p[0] = static_cast<uint16_t>(p[0] + S(p[4] ^ Mk16(tk[1 + j], tk[0 + j])));
    p[1] = static_cast<uint16_t>(p[1] + S(p[0] ^ Mk16(tk[5 + j], tk[4 + j])));
    p[2] = static_cast<uint16_t>(p[2] + S(p[1] ^ Mk16(tk[9 + j], tk[8 + j])));
    p[3] = static_cast<uint16_t>(p[3] + S(p[2] ^ Mk16(tk[13 + j], tk[12 + j])));
    p[4] = static_cast<uint16_t>(p[4] + S(p[3] ^ Mk16(tk[1 + j], tk[0 + j])) + i);
  }
  return p;
}

Rc4PacketKey TkipPhase2(const TkipPhase1Key& p1k, std::span<const uint8_t> tk,
                        uint16_t iv16) {
  assert(tk.size() == 16);
  std::array<uint16_t, 6> ppk;
  for (int i = 0; i < 5; ++i) {
    ppk[i] = p1k[i];
  }
  ppk[5] = static_cast<uint16_t>(p1k[4] + iv16);

  ppk[0] = static_cast<uint16_t>(ppk[0] + S(ppk[5] ^ Mk16(tk[1], tk[0])));
  ppk[1] = static_cast<uint16_t>(ppk[1] + S(ppk[0] ^ Mk16(tk[3], tk[2])));
  ppk[2] = static_cast<uint16_t>(ppk[2] + S(ppk[1] ^ Mk16(tk[5], tk[4])));
  ppk[3] = static_cast<uint16_t>(ppk[3] + S(ppk[2] ^ Mk16(tk[7], tk[6])));
  ppk[4] = static_cast<uint16_t>(ppk[4] + S(ppk[3] ^ Mk16(tk[9], tk[8])));
  ppk[5] = static_cast<uint16_t>(ppk[5] + S(ppk[4] ^ Mk16(tk[11], tk[10])));

  ppk[0] = static_cast<uint16_t>(ppk[0] + RotR1(ppk[5] ^ Mk16(tk[13], tk[12])));
  ppk[1] = static_cast<uint16_t>(ppk[1] + RotR1(ppk[0] ^ Mk16(tk[15], tk[14])));
  ppk[2] = static_cast<uint16_t>(ppk[2] + RotR1(ppk[1]));
  ppk[3] = static_cast<uint16_t>(ppk[3] + RotR1(ppk[2]));
  ppk[4] = static_cast<uint16_t>(ppk[4] + RotR1(ppk[3]));
  ppk[5] = static_cast<uint16_t>(ppk[5] + RotR1(ppk[4]));

  Rc4PacketKey key;
  const auto pub = TkipPublicKeyBytes(iv16);
  key[0] = pub[0];
  key[1] = pub[1];
  key[2] = pub[2];
  key[3] = Lo8(static_cast<uint16_t>((ppk[5] ^ Mk16(tk[1], tk[0])) >> 1));
  for (int i = 0; i < 6; ++i) {
    key[4 + 2 * i] = Lo8(ppk[i]);
    key[5 + 2 * i] = Hi8(ppk[i]);
  }
  return key;
}

Rc4PacketKey TkipMixKey(std::span<const uint8_t> tk, std::span<const uint8_t> ta,
                        uint64_t tsc48) {
  const uint32_t iv32 = static_cast<uint32_t>(tsc48 >> 16);
  const uint16_t iv16 = static_cast<uint16_t>(tsc48);
  return TkipPhase2(TkipPhase1(tk, ta, iv32), tk, iv16);
}

std::array<uint8_t, 3> TkipPublicKeyBytes(uint16_t iv16) {
  const uint8_t tsc1 = static_cast<uint8_t>(iv16 >> 8);
  const uint8_t tsc0 = static_cast<uint8_t>(iv16);
  return {tsc1, static_cast<uint8_t>((tsc1 | 0x20) & 0x7f), tsc0};
}

}  // namespace rc4b
