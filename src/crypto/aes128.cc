#include "src/crypto/aes128.h"

#include <cassert>

namespace rc4b {

namespace {

uint8_t GfMul(uint8_t a, uint8_t b) {
  uint8_t p = 0;
  while (b != 0) {
    if (b & 1) {
      p = static_cast<uint8_t>(p ^ a);
    }
    const bool hi = (a & 0x80) != 0;
    a = static_cast<uint8_t>(a << 1);
    if (hi) {
      a = static_cast<uint8_t>(a ^ 0x1b);  // AES irreducible polynomial x^8+x^4+x^3+x+1
    }
    b >>= 1;
  }
  return p;
}

// Computes the S-box from the field inverse and affine map instead of
// embedding a 256-entry literal; verified against FIPS-197 vectors in tests.
std::array<uint8_t, 256> BuildSBox() {
  std::array<uint8_t, 256> inv{};
  for (int a = 1; a < 256; ++a) {
    for (int b = 1; b < 256; ++b) {
      if (GfMul(static_cast<uint8_t>(a), static_cast<uint8_t>(b)) == 1) {
        inv[a] = static_cast<uint8_t>(b);
        break;
      }
    }
  }
  std::array<uint8_t, 256> sbox{};
  for (int i = 0; i < 256; ++i) {
    uint8_t x = inv[i];
    uint8_t y = x;
    for (int r = 0; r < 4; ++r) {
      y = static_cast<uint8_t>((y << 1) | (y >> 7));
      x = static_cast<uint8_t>(x ^ y);
    }
    sbox[i] = static_cast<uint8_t>(x ^ 0x63);
  }
  return sbox;
}

uint32_t SubWord(uint32_t w, const std::array<uint8_t, 256>& s) {
  return static_cast<uint32_t>(s[w >> 24]) << 24 |
         static_cast<uint32_t>(s[(w >> 16) & 0xff]) << 16 |
         static_cast<uint32_t>(s[(w >> 8) & 0xff]) << 8 |
         static_cast<uint32_t>(s[w & 0xff]);
}

uint32_t RotWord(uint32_t w) { return (w << 8) | (w >> 24); }

}  // namespace

const std::array<uint8_t, 256>& Aes128::SBox() {
  static const std::array<uint8_t, 256> kSBox = BuildSBox();
  return kSBox;
}

Aes128::Aes128(std::span<const uint8_t> key) {
  assert(key.size() == kKeySize);
  const auto& sbox = SBox();
  for (int i = 0; i < 4; ++i) {
    round_keys_[i] = LoadBe32(key.data() + 4 * i);
  }
  uint8_t rcon = 1;
  for (int i = 4; i < 44; ++i) {
    uint32_t temp = round_keys_[i - 1];
    if (i % 4 == 0) {
      temp = SubWord(RotWord(temp), sbox) ^ (static_cast<uint32_t>(rcon) << 24);
      rcon = GfMul(rcon, 2);
    }
    round_keys_[i] = round_keys_[i - 4] ^ temp;
  }
}

void Aes128::EncryptBlock(const uint8_t in[kBlockSize], uint8_t out[kBlockSize]) const {
  const auto& sbox = SBox();
  uint8_t state[16];
  std::memcpy(state, in, 16);

  auto add_round_key = [&](int round) {
    for (int c = 0; c < 4; ++c) {
      const uint32_t rk = round_keys_[4 * round + c];
      state[4 * c + 0] ^= static_cast<uint8_t>(rk >> 24);
      state[4 * c + 1] ^= static_cast<uint8_t>(rk >> 16);
      state[4 * c + 2] ^= static_cast<uint8_t>(rk >> 8);
      state[4 * c + 3] ^= static_cast<uint8_t>(rk);
    }
  };
  auto sub_bytes = [&] {
    for (auto& b : state) {
      b = sbox[b];
    }
  };
  auto shift_rows = [&] {
    // Row r (bytes state[4c + r]) rotates left by r positions.
    uint8_t t = state[1];
    state[1] = state[5];
    state[5] = state[9];
    state[9] = state[13];
    state[13] = t;
    std::swap(state[2], state[10]);
    std::swap(state[6], state[14]);
    t = state[15];
    state[15] = state[11];
    state[11] = state[7];
    state[7] = state[3];
    state[3] = t;
  };
  auto mix_columns = [&] {
    for (int c = 0; c < 4; ++c) {
      uint8_t* col = state + 4 * c;
      const uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
      col[0] = static_cast<uint8_t>(GfMul(a0, 2) ^ GfMul(a1, 3) ^ a2 ^ a3);
      col[1] = static_cast<uint8_t>(a0 ^ GfMul(a1, 2) ^ GfMul(a2, 3) ^ a3);
      col[2] = static_cast<uint8_t>(a0 ^ a1 ^ GfMul(a2, 2) ^ GfMul(a3, 3));
      col[3] = static_cast<uint8_t>(GfMul(a0, 3) ^ a1 ^ a2 ^ GfMul(a3, 2));
    }
  };

  add_round_key(0);
  for (int round = 1; round <= 9; ++round) {
    sub_bytes();
    shift_rows();
    mix_columns();
    add_round_key(round);
  }
  sub_bytes();
  shift_rows();
  add_round_key(10);
  std::memcpy(out, state, 16);
}

void Aes128Ctr::Generate(std::span<uint8_t> out) {
  size_t i = 0;
  while (i < out.size()) {
    if (buffered_ == 0) {
      uint8_t counter_block[Aes128::kBlockSize] = {};
      StoreBe64(counter_, counter_block + 8);
      aes_.EncryptBlock(counter_block, buffer_.data());
      ++counter_;
      buffered_ = Aes128::kBlockSize;
    }
    const size_t take = std::min(out.size() - i, buffered_);
    std::memcpy(out.data() + i, buffer_.data() + (Aes128::kBlockSize - buffered_), take);
    buffered_ -= take;
    i += take;
  }
}

void Aes128Ctr::Seek(uint64_t block_index) {
  counter_ = block_index;
  buffered_ = 0;
}

}  // namespace rc4b
