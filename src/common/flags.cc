#include "src/common/flags.h"

#include <cstdio>
#include <cstdlib>
#include <string_view>

namespace rc4b {

FlagSet& FlagSet::Define(const std::string& name, const std::string& default_value,
                         const std::string& help) {
  flags_[name] = Flag{default_value, help};
  return *this;
}

void FlagSet::PrintUsage() const {
  std::fprintf(stderr, "%s\n\nFlags:\n", description_.c_str());
  for (const auto& [name, flag] : flags_) {
    std::fprintf(stderr, "  --%-24s %s (default: %s)\n", name.c_str(),
                 flag.help.c_str(), flag.value.empty() ? "\"\"" : flag.value.c_str());
  }
}

bool FlagSet::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return false;
    }
    if (arg.substr(0, 2) != "--") {
      std::fprintf(stderr, "unexpected positional argument: %s\n", argv[i]);
      std::exit(2);
    }
    arg.remove_prefix(2);
    std::string name;
    std::string value;
    auto eq = arg.find('=');
    if (eq != std::string_view::npos) {
      name = std::string(arg.substr(0, eq));
      value = std::string(arg.substr(eq + 1));
    } else {
      name = std::string(arg);
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag --%s expects a value\n", name.c_str());
        std::exit(2);
      }
      value = argv[++i];
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      std::fprintf(stderr, "unknown flag --%s (use --help)\n", name.c_str());
      std::exit(2);
    }
    it->second.value = value;
  }
  return true;
}

std::string FlagSet::GetString(const std::string& name) const {
  return flags_.at(name).value;
}

int64_t FlagSet::GetInt(const std::string& name) const {
  return std::strtoll(flags_.at(name).value.c_str(), nullptr, 0);
}

uint64_t FlagSet::GetUint(const std::string& name) const {
  return std::strtoull(flags_.at(name).value.c_str(), nullptr, 0);
}

double FlagSet::GetDouble(const std::string& name) const {
  return std::strtod(flags_.at(name).value.c_str(), nullptr);
}

bool FlagSet::GetBool(const std::string& name) const {
  const std::string& v = flags_.at(name).value;
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

FlagSet& DefineScaleFlags(FlagSet& flags, const ScaleFlagSpec& spec) {
  return flags.Define(spec.count_flag, spec.count_default, spec.count_help)
      .Define(spec.workers_flag, "0", spec.workers_help)
      .Define("seed", spec.seed_default, spec.seed_help)
      .Define("interleave", "0",
              "RC4 streams per lockstep group (0 = auto, 1 = scalar; "
              "rounds down to a supported width)")
      .Define("kernel", "",
              "RC4 lane kernel (scalar|ssse3|avx2|neon; \"\" = auto: "
              "$RC4B_KERNEL, else autotune cache, else best for this CPU)");
}

ScaleFlagValues GetScaleFlags(const FlagSet& flags, const ScaleFlagSpec& spec) {
  ScaleFlagValues values;
  values.count = flags.GetUint(spec.count_flag);
  values.workers = static_cast<unsigned>(flags.GetUint(spec.workers_flag));
  values.seed = flags.GetUint("seed");
  values.interleave = static_cast<size_t>(flags.GetUint("interleave"));
  values.kernel = flags.GetString("kernel");
  return values;
}

}  // namespace rc4b
