// Recovery of the unknown IP/TCP header fields of the injected packet
// (Sect. 5.3): the internal client IP, the client's source port, and the IP
// TTL are a priori unknown to the attacker, but both the IP header checksum
// and the TCP checksum cover them. The paper applies "exactly the same
// technique" as for the MIC/ICV: generate candidates for the unknown bytes
// in decreasing likelihood and prune those whose checksums do not validate.
//
// This module implements that step for the attack's packet layout: the
// victim-side unknowns are the TTL (1 byte), the IP destination = internal
// client address (4 bytes, server -> client direction), the TCP destination
// port (2 bytes), plus the two checksums themselves (4 bytes) — 11 unknown
// plaintext bytes, each with a per-position likelihood table.
#ifndef SRC_TKIP_HEADER_RECOVERY_H_
#define SRC_TKIP_HEADER_RECOVERY_H_

#include <cstdint>
#include <optional>

#include "src/core/candidates.h"
#include "src/net/packet.h"

namespace rc4b {

// Byte offsets of the unknown fields within the MSDU (LLC/SNAP 8 bytes, then
// IP header at 8..27, TCP header at 28..47). All offsets 0-based.
struct UnknownHeaderLayout {
  static constexpr size_t kTtl = 8 + 8;             // IP TTL
  static constexpr size_t kIpChecksum = 8 + 10;     // 2 bytes
  static constexpr size_t kClientAddress = 8 + 16;  // IP destination, 4 bytes
  static constexpr size_t kClientPort = 28 + 2;     // TCP destination port
  static constexpr size_t kTcpChecksum = 28 + 16;   // 2 bytes

  // The unknown positions in ascending order.
  static std::vector<size_t> Positions();
};

struct HeaderRecoveryResult {
  bool found = false;
  uint64_t candidates_tried = 0;
  uint8_t ttl = 0;
  uint32_t client_address = 0;
  uint16_t client_port = 0;
  Bytes msdu;  // the template with all recovered fields patched in
};

// `template_msdu` is the injected packet with the unknown fields zeroed
// (everything else — addresses the attacker controls, payload, lengths — is
// known). `likelihoods` has one 256-entry table per unknown position, in
// UnknownHeaderLayout::Positions() order. Candidates are enumerated in
// decreasing likelihood; a candidate is accepted when both the IP header
// checksum and the TCP checksum validate.
HeaderRecoveryResult RecoverHeaderFields(const Bytes& template_msdu,
                                         const SingleByteTables& likelihoods,
                                         uint64_t max_candidates);

// Checksum predicate used for pruning (exposed for tests): true iff the MSDU
// has valid IP and TCP checksums.
bool HeaderChecksumsValid(const Bytes& msdu);

}  // namespace rc4b

#endif  // SRC_TKIP_HEADER_RECOVERY_H_
