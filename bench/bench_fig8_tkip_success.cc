// Fig. 8 — probability of recovering the TKIP MIC key vs the number of
// captured copies of the injected packet, with a ~2^30-candidate traversal
// and with only the two best candidates. Uses real TKIP key mixing + RC4 per
// packet; the candidate-list position of the true trailer is computed
// exactly by the rank DP (materializing 2^30 candidates is infeasible).
// Trials run on the src/sim/ subsystem: results are bit-exact for any
// --workers value (docs/sim.md).
#include <cstdio>

#include "bench/harness.h"
#include "src/common/flags.h"
#include "src/sim/tkip_sim.h"

namespace rc4b {
namespace {

int Run(int argc, char** argv) {
  const ScaleFlagSpec scale{.count_flag = "sims",
                            .count_default = "24",
                            .count_help = "simulated attacks (paper: 256)",
                            .seed_default = "11"};
  FlagSet flags("Fig. 8: TKIP MIC key recovery success rate");
  DefineScaleFlags(flags, scale)
      .Define("max-copies", "15", "largest checkpoint in units of 2^20 packets")
      .Define("step", "2", "checkpoint step in units of 2^20")
      .Define("keys-per-tsc", "0x40000", "model keys per TSC1 class (2^18)")
      .Define("budget-log2", "30", "log2 of the candidate budget")
      .Define("target-bias-rms", "0.0015",
              "calibrate the model's RMS relative bias (0 = leave the raw "
              "model, whose sampling noise inflates the signal)")
      .Define("oracle", "true",
              "perfect-model victim (see src/sim/tkip_sim.h); false = real "
              "TKIP mixing + RC4 with an honestly-trained model")
      .Define("model-seed", "12", "attacker model seed (independent of sims)");
  if (!flags.Parse(argc, argv)) {
    return 0;
  }
  const ScaleFlagValues scale_values = GetScaleFlags(flags, scale);

  const uint64_t max_copies = flags.GetUint("max-copies");
  const uint64_t step = flags.GetUint("step");

  bench::PrintHeader(
      "bench_fig8_tkip_success",
      "Fig. 8 (TKIP MIC key recovery vs ciphertext copies x 2^20)",
      "substitution: per-TSC1 keystream models at --keys-per-tsc keys/class "
      "(paper: per-(TSC0,TSC1) at 2^32); success needs more copies than the "
      "paper's but the candidate-list >> 2-candidate gap must reproduce");

  const Bytes msdu = sim::InjectedPacket();
  TkipTscModel model(msdu.size() + 1, msdu.size() + kTkipTrailerSize);
  std::printf("generating attacker model (256 classes x %llu keys)...\n",
              static_cast<unsigned long long>(flags.GetUint("keys-per-tsc")));
  model.Generate(flags.GetUint("keys-per-tsc"), flags.GetUint("model-seed"),
                 scale_values.workers);
  const double target_rms = flags.GetDouble("target-bias-rms");
  if (target_rms > 0.0) {
    const double raw_rms = model.RmsRelativeDeviation();
    if (raw_rms > target_rms) {
      model.ShrinkTowardUniform(target_rms / raw_rms);
    }
    std::printf("model RMS relative bias: raw %.4f -> calibrated %.4f\n",
                raw_rms, model.RmsRelativeDeviation());
  }

  sim::TkipSimOptions options;
  for (uint64_t copies = 1; copies <= max_copies; copies += step) {
    options.checkpoints.push_back(copies << 20);
  }
  options.candidate_budget = uint64_t{1} << flags.GetUint("budget-log2");
  options.trials = scale_values.count;
  options.workers = scale_values.workers;
  options.seed = scale_values.seed;
  options.oracle_model = flags.GetBool("oracle");

  const auto aggregate = sim::RunTkipSimulations(model, options);

  std::printf("\n%-16s %16s %16s\n", "copies (x2^20)", "2^30 candidates",
              "2 candidates");
  for (size_t c = 0; c < aggregate.checkpoints.size(); ++c) {
    std::printf("%-16llu %15.1f%% %15.1f%%\n",
                static_cast<unsigned long long>(aggregate.checkpoints[c] >> 20),
                100.0 * static_cast<double>(aggregate.budget_wins[c]) /
                    static_cast<double>(aggregate.trials),
                100.0 * static_cast<double>(aggregate.two_wins[c]) /
                    static_cast<double>(aggregate.trials));
  }
  return 0;
}

}  // namespace
}  // namespace rc4b

int main(int argc, char** argv) { return rc4b::Run(argc, argv); }
